// Observability layer, part 1: structured epoch traces.
//
// The CMM control loop makes one opaque decision per epoch (which cores
// are Agg, which candidate configurations were sampled, which hm_ipc
// won); the paper's evaluation (Figs. 4-6, 13) is an explanation of
// those decisions. This header defines the typed event vocabulary the
// loop emits so that a trace, not a debugger, can tell the story:
//
//   EpochStart       an execution epoch began (length + config in force)
//   DetectorVerdict  per-core Table-I metrics (PGA/PMR/PTR) + Agg flag
//   SampleResult     one sampling interval's candidate config + hm_ipc
//   ConfigApplied    a configuration landed on hardware (and why)
//   DegradationStep  a rung of the fault ladder fired
//   FaultRetry       a transient HAL fault was re-attempted
//
// Service-mode events (runtime tenant churn, PR-6):
//
//   TenantAttach     a tenant was admitted and installed on a core
//   TenantDetach     a tenant departed; its core was hotplugged out
//   SloBreach        a tenant's epoch IPC fell under its SLO floor
//   RecoveryProbe    a probation re-probe of a degraded axis ran
//
// Hierarchical-coordinator events (cross-domain live migration, PR-10):
//
//   TenantMigrated     the coordinator moved a tenant between domains
//   MigrationRejected  the round's best candidate failed the cost model
//
// All timestamps are monotonic *simulated* time, so traces are
// bit-deterministic at any CMM_THREADS (every EpochDriver is driven by
// exactly one thread; parallel batches give each run its own sink).
//
// Cost model: instrumented code holds a `Trace` handle and guards every
// emission with `if (trace.on())`. With no sink (or a NullSink) that is
// a single pointer test — no event is built, nothing is formatted, the
// hot path is untouched. Sinks receive *views* (string_view, ConfigView
// pointers) and must serialize before returning.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace cmm::obs {

/// Non-owning view of a ResourceConfig (mirrors core::ResourceConfig
/// without depending on cmm_core; obs sits below core in the link
/// graph so policies can hold Trace handles).
struct ConfigView {
  const std::vector<bool>* prefetch_on = nullptr;
  const std::vector<WayMask>* way_masks = nullptr;
  // BP axis (MBA throttle levels). Null or all-zero means unregulated;
  // sinks only serialize the field when some level is nonzero, so
  // pre-BP traces stay byte-identical.
  const std::vector<std::uint8_t>* throttle_levels = nullptr;
};

struct EpochStart {
  Cycle time = 0;
  std::uint64_t epoch = 0;
  Cycle length = 0;
  std::string_view policy;
  ConfigView config;
};

struct DetectorVerdict {
  Cycle time = 0;
  std::uint64_t epoch = 0;
  CoreId core = kInvalidCore;
  double pga = 0.0;  // M-4: prefetch generation ability
  double pmr = 0.0;  // M-5: L2 prefetch miss ratio
  double ptr = 0.0;  // M-3: L2 prefetch traffic rate (per second)
  bool agg = false;  // survived all three detection steps
};

struct SampleResult {
  Cycle time = 0;
  std::uint64_t epoch = 0;
  std::uint64_t sample = 0;  // index within the profiling epoch
  double hm_ipc = 0.0;       // objective value of this interval
  ConfigView config;         // candidate configuration measured
};

struct ConfigApplied {
  Cycle time = 0;
  std::uint64_t epoch = 0;
  std::string_view source;  // "initial" | "sample" | "final" | "watchdog"
  ConfigView config;        // effective config (post degradation ladder)
};

struct DegradationStep {
  Cycle time = 0;
  std::uint64_t epoch = 0;
  std::string_view step;  // health-event name, e.g. "pt_only_fallback"
  CoreId core = kInvalidCore;
  std::uint64_t detail = 0;
  std::string_view note;
};

struct FaultRetry {
  Cycle time = 0;
  std::uint64_t epoch = 0;
  std::uint32_t attempt = 0;
  std::uint64_t backoff_units = 0;
  std::string_view what;
};

struct TenantAttach {
  Cycle time = 0;
  std::uint64_t epoch = 0;
  CoreId core = kInvalidCore;
  std::string_view tenant;   // benchmark name of the admitted workload
  double slo = 0.0;          // min-IPC-vs-solo floor (fraction of solo)
  double solo_ipc = 0.0;     // memoized solo IPC the floor is scaled by
};

struct TenantDetach {
  Cycle time = 0;
  std::uint64_t epoch = 0;
  CoreId core = kInvalidCore;
  std::string_view tenant;
  std::uint64_t epochs_served = 0;
  double mean_ipc = 0.0;  // over the tenant's service epochs
};

struct SloBreach {
  Cycle time = 0;
  std::uint64_t epoch = 0;
  CoreId core = kInvalidCore;
  std::string_view tenant;
  double ipc = 0.0;    // measured epoch IPC
  double floor = 0.0;  // slo * solo_ipc
};

struct RecoveryProbe {
  Cycle time = 0;
  std::uint64_t epoch = 0;
  std::string_view axis;  // "prefetch" | "cat"
  CoreId core = kInvalidCore;
  bool ok = false;
};

/// One accepted cross-domain migration (emitted once per moved tenant,
/// so a swap produces two events). Core ids are GLOBAL fleet ids; the
/// domain fields are redundant with domain_of(core) but keep the trace
/// self-describing for offline tooling.
struct TenantMigrated {
  Cycle time = 0;
  std::uint64_t epoch = 0;
  CoreId from_core = kInvalidCore;
  CoreId to_core = kInvalidCore;
  std::uint32_t from_domain = 0;
  std::uint32_t to_domain = 0;
  std::string_view tenant;
  double predicted_gain = 0.0;  // relative fleet-hm_ipc gain the move was accepted on
};

/// The coordinator round's best migration candidate failed a gate of
/// the cost model (strict-improvement threshold, bandwidth feasibility,
/// hysteresis cooldown).
struct MigrationRejected {
  Cycle time = 0;
  std::uint64_t epoch = 0;
  CoreId from_core = kInvalidCore;
  CoreId to_core = kInvalidCore;
  std::string_view tenant;
  std::string_view reason;  // "no_gain" | "bandwidth" | "cooldown"
  double predicted_gain = 0.0;
};

/// Event consumer. Default implementations drop everything, so a sink
/// overrides only the events it cares about. `enabled()` lets the
/// Trace handle strip a disabled sink at wiring time (NullSink).
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual bool enabled() const noexcept { return true; }

  virtual void emit(const EpochStart&) {}
  virtual void emit(const DetectorVerdict&) {}
  virtual void emit(const SampleResult&) {}
  virtual void emit(const ConfigApplied&) {}
  virtual void emit(const DegradationStep&) {}
  virtual void emit(const FaultRetry&) {}
  virtual void emit(const TenantAttach&) {}
  virtual void emit(const TenantDetach&) {}
  virtual void emit(const SloBreach&) {}
  virtual void emit(const RecoveryProbe&) {}
  virtual void emit(const TenantMigrated&) {}
  virtual void emit(const MigrationRejected&) {}

  virtual void flush() {}
};

/// The default sink: tracing compiled in, permanently off. Kept as a
/// distinct type so "tracing disabled" is an explicit, testable state
/// (the determinism suite pins NullSink bit-identity against no sink).
class NullSink final : public TraceSink {
 public:
  bool enabled() const noexcept override { return false; }
};

/// Shared stamp the event producer (EpochDriver) keeps current so that
/// consumers wired deeper in (policies, detector) emit events carrying
/// the same simulated time / epoch index without owning a clock.
struct TraceContext {
  Cycle now = 0;
  std::uint64_t epoch = 0;
};

/// Nullable, copyable handle instrumented code holds. Default
/// constructed it is off; `on()` is one pointer compare, so call sites
/// guard event construction with it and pay nothing when disabled.
class Trace {
 public:
  Trace() = default;
  explicit Trace(TraceSink* sink, const TraceContext* ctx = nullptr) noexcept
      : sink_(sink != nullptr && sink->enabled() ? sink : nullptr), ctx_(ctx) {}

  bool on() const noexcept { return sink_ != nullptr; }
  Cycle now() const noexcept { return ctx_ != nullptr ? ctx_->now : 0; }
  std::uint64_t epoch() const noexcept { return ctx_ != nullptr ? ctx_->epoch : 0; }

  template <typename Event>
  void emit(const Event& event) const {
    if (sink_ != nullptr) sink_->emit(event);
  }

 private:
  TraceSink* sink_ = nullptr;
  const TraceContext* ctx_ = nullptr;
};

}  // namespace cmm::obs
