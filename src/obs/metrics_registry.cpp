#include "obs/metrics_registry.hpp"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cstdio>

namespace cmm::obs {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

void append_key(std::string& out, const std::string& name) {
  // Metric names are identifiers chosen by instrumentation code
  // (letters, digits, '.', '_'), so no escaping is needed.
  out += '"';
  out += name;
  out += "\":";
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds(std::move(upper_bounds)), counts(bounds.size() + 1, 0) {}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  ++counts[static_cast<std::size_t>(it - bounds.begin())];
  sum += value;
  ++count;
}

void MetricsRegistry::count(const std::string& name, std::uint64_t delta) {
  counters_[name] += delta;
}

void MetricsRegistry::gauge(const std::string& name, double value) {
  gauges_[name] = value;
}

void MetricsRegistry::observe(const std::string& name, double value,
                              const std::vector<double>& bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(bounds)).first;
  }
  it->second.observe(value);
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second : 0;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, value] : other.gauges_) gauges_[name] = value;
  for (const auto& [name, hist] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, hist);
      continue;
    }
    Histogram& mine = it->second;
    assert(mine.bounds == hist.bounds && "histogram bounds mismatch on merge");
    for (std::size_t i = 0; i < mine.counts.size() && i < hist.counts.size(); ++i) {
      mine.counts[i] += hist.counts[i];
    }
    mine.sum += hist.sum;
    mine.count += hist.count;
  }
}

std::string MetricsRegistry::json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ',';
    first = false;
    append_key(out, name);
    append_u64(out, value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (!first) out += ',';
    first = false;
    append_key(out, name);
    append_double(out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) out += ',';
    first = false;
    append_key(out, name);
    out += "{\"bounds\":[";
    for (std::size_t i = 0; i < hist.bounds.size(); ++i) {
      if (i != 0) out += ',';
      append_double(out, hist.bounds[i]);
    }
    out += "],\"counts\":[";
    for (std::size_t i = 0; i < hist.counts.size(); ++i) {
      if (i != 0) out += ',';
      append_u64(out, hist.counts[i]);
    }
    out += "],\"sum\":";
    append_double(out, hist.sum);
    out += ",\"count\":";
    append_u64(out, hist.count);
    out += '}';
  }
  out += "}}";
  return out;
}

}  // namespace cmm::obs
