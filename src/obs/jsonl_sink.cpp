#include "obs/jsonl_sink.hpp"

#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace cmm::obs {

namespace {

void append_escaped(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

/// %.9g is enough to round-trip every value the loop produces (IPCs,
/// rates) and, being printf-based, is byte-stable across runs — the
/// determinism suite compares traces with memcmp.
void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

void append_core(std::string& out, CoreId core) {
  // kInvalidCore serializes as -1: "no specific core".
  if (core == kInvalidCore) {
    out += "-1";
  } else {
    append_u64(out, core);
  }
}

void append_config(std::string& out, const ConfigView& config) {
  out += "\"prefetch\":\"";
  if (config.prefetch_on != nullptr) {
    for (const bool on : *config.prefetch_on) out += on ? '1' : '0';
  }
  out += "\",\"masks\":[";
  if (config.way_masks != nullptr) {
    bool first = true;
    for (const WayMask m : *config.way_masks) {
      if (!first) out += ',';
      first = false;
      append_u64(out, m);
    }
  }
  out += ']';
  // "throttle" is emitted only when regulation is actually in force:
  // level-0-everywhere configs (every pre-BP run) keep their exact
  // pre-BP byte stream, which the trace-determinism suite memcmps.
  if (config.throttle_levels != nullptr) {
    bool any = false;
    for (const std::uint8_t lvl : *config.throttle_levels) any = any || lvl != 0;
    if (any) {
      out += ",\"throttle\":[";
      bool first = true;
      for (const std::uint8_t lvl : *config.throttle_levels) {
        if (!first) out += ',';
        first = false;
        append_u64(out, lvl);
      }
      out += ']';
    }
  }
}

void append_header(std::string& out, std::string_view type, Cycle time, std::uint64_t epoch) {
  out += "{\"type\":";
  append_escaped(out, type);
  out += ",\"t\":";
  append_u64(out, time);
  out += ",\"epoch\":";
  append_u64(out, epoch);
}

}  // namespace

JsonlTraceSink::JsonlTraceSink(std::ostream& out, std::size_t flush_bytes,
                               std::uint64_t flush_every_events)
    : out_(&out), flush_bytes_(flush_bytes), flush_every_events_(flush_every_events) {
  buffer_.reserve(flush_bytes_ + 512);
}

JsonlTraceSink::JsonlTraceSink(const std::string& path, std::size_t flush_bytes,
                               std::uint64_t flush_every_events)
    : file_(path), out_(&file_), flush_bytes_(flush_bytes),
      flush_every_events_(flush_every_events) {
  if (!file_) throw std::runtime_error("JsonlTraceSink: cannot open " + path);
  buffer_.reserve(flush_bytes_ + 512);
}

JsonlTraceSink::~JsonlTraceSink() { flush(); }

void JsonlTraceSink::line(const std::string& text) {
  const std::lock_guard<std::mutex> lock(mutex_);
  buffer_ += text;
  buffer_ += '\n';
  ++events_;
  const bool interval_hit = flush_every_events_ != 0 && events_ % flush_every_events_ == 0;
  if (buffer_.size() >= flush_bytes_ || interval_hit) {
    out_->write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
    if (interval_hit) out_->flush();  // a live tail must see the bytes
  }
}

void JsonlTraceSink::flush() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!buffer_.empty()) {
    out_->write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
  }
  out_->flush();
}

void JsonlTraceSink::emit(const EpochStart& ev) {
  std::string s;
  append_header(s, "epoch_start", ev.time, ev.epoch);
  s += ",\"len\":";
  append_u64(s, ev.length);
  s += ",\"policy\":";
  append_escaped(s, ev.policy);
  s += ',';
  append_config(s, ev.config);
  s += '}';
  line(s);
}

void JsonlTraceSink::emit(const DetectorVerdict& ev) {
  std::string s;
  append_header(s, "detector_verdict", ev.time, ev.epoch);
  s += ",\"core\":";
  append_core(s, ev.core);
  s += ",\"pga\":";
  append_double(s, ev.pga);
  s += ",\"pmr\":";
  append_double(s, ev.pmr);
  s += ",\"ptr\":";
  append_double(s, ev.ptr);
  s += ",\"agg\":";
  s += ev.agg ? "true" : "false";
  s += '}';
  line(s);
}

void JsonlTraceSink::emit(const SampleResult& ev) {
  std::string s;
  append_header(s, "sample_result", ev.time, ev.epoch);
  s += ",\"sample\":";
  append_u64(s, ev.sample);
  s += ",\"hm_ipc\":";
  append_double(s, ev.hm_ipc);
  s += ',';
  append_config(s, ev.config);
  s += '}';
  line(s);
}

void JsonlTraceSink::emit(const ConfigApplied& ev) {
  std::string s;
  append_header(s, "config_applied", ev.time, ev.epoch);
  s += ",\"source\":";
  append_escaped(s, ev.source);
  s += ',';
  append_config(s, ev.config);
  s += '}';
  line(s);
}

void JsonlTraceSink::emit(const DegradationStep& ev) {
  std::string s;
  append_header(s, "degradation_step", ev.time, ev.epoch);
  s += ",\"step\":";
  append_escaped(s, ev.step);
  s += ",\"core\":";
  append_core(s, ev.core);
  s += ",\"detail\":";
  append_u64(s, ev.detail);
  s += ",\"note\":";
  append_escaped(s, ev.note);
  s += '}';
  line(s);
}

void JsonlTraceSink::emit(const FaultRetry& ev) {
  std::string s;
  append_header(s, "fault_retry", ev.time, ev.epoch);
  s += ",\"attempt\":";
  append_u64(s, ev.attempt);
  s += ",\"backoff\":";
  append_u64(s, ev.backoff_units);
  s += ",\"what\":";
  append_escaped(s, ev.what);
  s += '}';
  line(s);
}

void JsonlTraceSink::emit(const TenantAttach& ev) {
  std::string s;
  append_header(s, "tenant_attach", ev.time, ev.epoch);
  s += ",\"core\":";
  append_core(s, ev.core);
  s += ",\"tenant\":";
  append_escaped(s, ev.tenant);
  s += ",\"slo\":";
  append_double(s, ev.slo);
  s += ",\"solo_ipc\":";
  append_double(s, ev.solo_ipc);
  s += '}';
  line(s);
}

void JsonlTraceSink::emit(const TenantDetach& ev) {
  std::string s;
  append_header(s, "tenant_detach", ev.time, ev.epoch);
  s += ",\"core\":";
  append_core(s, ev.core);
  s += ",\"tenant\":";
  append_escaped(s, ev.tenant);
  s += ",\"epochs_served\":";
  append_u64(s, ev.epochs_served);
  s += ",\"mean_ipc\":";
  append_double(s, ev.mean_ipc);
  s += '}';
  line(s);
}

void JsonlTraceSink::emit(const SloBreach& ev) {
  std::string s;
  append_header(s, "slo_breach", ev.time, ev.epoch);
  s += ",\"core\":";
  append_core(s, ev.core);
  s += ",\"tenant\":";
  append_escaped(s, ev.tenant);
  s += ",\"ipc\":";
  append_double(s, ev.ipc);
  s += ",\"floor\":";
  append_double(s, ev.floor);
  s += '}';
  line(s);
}

void JsonlTraceSink::emit(const TenantMigrated& ev) {
  std::string s;
  append_header(s, "tenant_migrated", ev.time, ev.epoch);
  s += ",\"core_from\":";
  append_core(s, ev.from_core);
  s += ",\"core_to\":";
  append_core(s, ev.to_core);
  s += ",\"domain_from\":";
  append_u64(s, ev.from_domain);
  s += ",\"domain_to\":";
  append_u64(s, ev.to_domain);
  s += ",\"tenant\":";
  append_escaped(s, ev.tenant);
  s += ",\"gain\":";
  append_double(s, ev.predicted_gain);
  s += '}';
  line(s);
}

void JsonlTraceSink::emit(const MigrationRejected& ev) {
  std::string s;
  append_header(s, "migration_rejected", ev.time, ev.epoch);
  s += ",\"core_from\":";
  append_core(s, ev.from_core);
  s += ",\"core_to\":";
  append_core(s, ev.to_core);
  s += ",\"tenant\":";
  append_escaped(s, ev.tenant);
  s += ",\"reason\":";
  append_escaped(s, ev.reason);
  s += ",\"gain\":";
  append_double(s, ev.predicted_gain);
  s += '}';
  line(s);
}

void JsonlTraceSink::emit(const RecoveryProbe& ev) {
  std::string s;
  append_header(s, "recovery_probe", ev.time, ev.epoch);
  s += ",\"axis\":";
  append_escaped(s, ev.axis);
  s += ",\"core\":";
  append_core(s, ev.core);
  s += ",\"ok\":";
  s += ev.ok ? "true" : "false";
  s += '}';
  line(s);
}

}  // namespace cmm::obs
