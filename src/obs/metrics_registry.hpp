// Observability layer, part 2: named counters / gauges / histograms.
//
// A MetricsRegistry is a passive bag of numbers the control loop bumps
// as it runs (epochs driven, samples taken, health events by kind,
// per-policy win counts) plus fixed-bucket histograms for distributions
// the paper cares about (samples per profiling epoch, epoch lengths).
// It is snapshotable to deterministic JSON (std::map ordering, printf
// formatting) and mergeable, so batch runs can keep one registry per
// mix/job and fold them in a fixed order — results are identical at any
// CMM_THREADS.
//
// Not thread-safe by design: one registry per single-threaded run (or
// per harness job), merged after the fact. That keeps increments to a
// map lookup + add on the instrumented path and needs no atomics.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cmm::obs {

/// Fixed-bucket histogram: counts[i] holds observations <= bounds[i],
/// with one extra overflow bucket at the end. Bounds are set once at
/// registration and never change, so merging is bucket-wise addition.
struct Histogram {
  std::vector<double> bounds;   // ascending upper bounds
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 (overflow last)
  double sum = 0.0;
  std::uint64_t count = 0;

  explicit Histogram(std::vector<double> upper_bounds = {});

  void observe(double value);
};

class MetricsRegistry {
 public:
  /// Add `delta` to the named counter, creating it at zero first.
  void count(const std::string& name, std::uint64_t delta = 1);

  /// Set the named gauge to `value` (last write wins on merge order).
  void gauge(const std::string& name, double value);

  /// Record `value` into the named histogram, registering it with
  /// `bounds` on first use. Bounds passed on later calls are ignored —
  /// first registration wins, mirroring Prometheus semantics.
  void observe(const std::string& name, double value,
               const std::vector<double>& bounds);

  std::uint64_t counter(const std::string& name) const;

  bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Fold `other` into this registry: counters and histogram buckets
  /// add, gauges overwrite. Histogram bounds must match (they do when
  /// both sides were bumped by the same instrumentation).
  void merge(const MetricsRegistry& other);

  /// Deterministic single-line JSON snapshot:
  /// {"counters":{...},"gauges":{...},"histograms":{...}}
  std::string json() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace cmm::obs
