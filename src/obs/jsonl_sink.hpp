// Observability layer: JSONL trace sink. One JSON object per line, one
// line per event, schema documented in EXPERIMENTS.md ("Observability")
// and validated by scripts/trace_report.py.
#pragma once

#include <fstream>
#include <iosfwd>
#include <mutex>
#include <string>

#include "obs/trace.hpp"

namespace cmm::obs {

/// Buffered JSONL writer. Events are formatted immediately (they carry
/// non-owning views) into an in-memory buffer that is flushed to the
/// underlying stream when it crosses `flush_bytes`, every
/// `flush_every_events` events (when non-zero — the bound long-run
/// soaks rely on so a live tail sees progress and memory stays flat
/// even if single events are huge), on flush(), or on destruction — the
/// sim never blocks on file I/O mid-epoch. A single mutex guards the
/// buffer; within one EpochDriver all events come from one thread, so
/// the lock is uncontended and exists only to keep shared-sink setups
/// (and TSan) honest.
class JsonlTraceSink final : public TraceSink {
 public:
  /// Write to a caller-owned stream (must outlive the sink).
  explicit JsonlTraceSink(std::ostream& out, std::size_t flush_bytes = 64 * 1024,
                          std::uint64_t flush_every_events = 0);

  /// Convenience: own an output file. Throws std::runtime_error when
  /// the file cannot be opened.
  explicit JsonlTraceSink(const std::string& path, std::size_t flush_bytes = 64 * 1024,
                          std::uint64_t flush_every_events = 0);

  ~JsonlTraceSink() override;

  void emit(const EpochStart& ev) override;
  void emit(const DetectorVerdict& ev) override;
  void emit(const SampleResult& ev) override;
  void emit(const ConfigApplied& ev) override;
  void emit(const DegradationStep& ev) override;
  void emit(const FaultRetry& ev) override;
  void emit(const TenantAttach& ev) override;
  void emit(const TenantDetach& ev) override;
  void emit(const SloBreach& ev) override;
  void emit(const RecoveryProbe& ev) override;
  void emit(const TenantMigrated& ev) override;
  void emit(const MigrationRejected& ev) override;

  void flush() override;

  std::uint64_t events() const noexcept { return events_; }

 private:
  void line(const std::string& text);

  std::ofstream file_;   // used only by the path constructor
  std::ostream* out_;    // always valid
  std::size_t flush_bytes_;
  std::uint64_t flush_every_events_;
  std::string buffer_;
  std::uint64_t events_ = 0;
  std::mutex mutex_;
};

}  // namespace cmm::obs
