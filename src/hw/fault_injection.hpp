// Fault-injecting decorators over the HAL interfaces, driven by a
// seeded, deterministic FaultPlan. They model the failure modes the
// paper's kernel-module deployment sees on real silicon (see
// docs/PORTING.md, "Failure model & degradation ladder"):
//
//   MSR read/write faults      - #GP, EBUSY on /dev/cpu/<n>/msr
//   PMU read faults            - perf_event read EINTR / revoked fd
//   PMU counter wrap           - 48-bit counters overflowing mid-interval
//   PMU garbage snapshots      - multiplexing scaling gone wrong
//   CAT programming faults     - pqos/resctrl rejecting a mask
//   per-core offline faults    - CPU hotplug removing a core's knobs
//
// Every decision comes from one Rng owned by the FaultInjector, so a
// given (FaultPlan, HAL call sequence) produces an identical fault
// stream on every run and at any harness thread count. Faults
// classified persistent are sticky per (op, core): once a knob has
// failed persistently it fails forever, which is what forces the
// controller down its degradation ladder instead of retrying.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/retry.hpp"
#include "common/rng.hpp"
#include "hw/cat_controller.hpp"
#include "hw/mba_controller.hpp"
#include "hw/msr_device.hpp"
#include "hw/pmu_reader.hpp"

namespace cmm::hw {

/// HAL operations a FaultPlan can target.
enum class FaultOp : std::uint8_t {
  MsrRead,
  MsrWrite,
  PmuRead,
  CatApply,
  CatReset,
  MbaApply,
  MbaReset,
};

std::string_view to_string(FaultOp op) noexcept;

struct FaultPlan {
  std::uint64_t seed = 1;

  // Per-call failure probabilities (throwing faults).
  double msr_read_fail_p = 0.0;
  double msr_write_fail_p = 0.0;
  double pmu_read_fail_p = 0.0;
  double cat_apply_fail_p = 0.0;
  double cat_reset_fail_p = 0.0;
  double mba_apply_fail_p = 0.0;
  double mba_reset_fail_p = 0.0;

  /// An injected throwing fault is Transient with this probability,
  /// Persistent otherwise. Persistent faults are sticky per (op, core).
  double transient_fraction = 1.0;

  // PMU read-path corruption (no exception; the snapshot lies).
  double pmu_wrap_p = 0.0;     // per-snapshot: one core's counters wrap
  double pmu_garbage_p = 0.0;  // per-snapshot: one core's counters are garbage

  /// Counters wrap modulo 2^pmu_wrap_bits (real fixed counters are 48
  /// bits; the default is small enough to wrap at simulator scale).
  unsigned pmu_wrap_bits = 20;

  /// Ops targeting these cores always fail persistently (hotplug).
  std::vector<CoreId> offline_cores;

  /// Repair window: a persistent (op, core) fault heals after this many
  /// subsequent maybe_fault() calls (any op), modelling a driver reload
  /// or re-onlined knob — what lets the recovery ladder's probes
  /// eventually succeed. 0 (default) = persistent faults never heal,
  /// the PR-2 behaviour. Counter-based, not RNG-based, so enabling it
  /// does not shift the fault stream of unaffected calls, and plans
  /// with rate 0 stay bit-identical to the fault-free path.
  /// offline_cores never heal.
  std::uint64_t repair_after_calls = 0;

  /// Uniform transient-fault plan over every throwing op.
  static FaultPlan transient_everywhere(double rate, std::uint64_t seed);

  /// True when the plan can ever inject anything.
  bool enabled() const noexcept;
};

/// Shared deterministic fault source for one run. One instance is
/// threaded through all three decorators so the fault stream is a
/// single sequence in HAL call order.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan), rng_(plan.seed) {}

  const FaultPlan& plan() const noexcept { return plan_; }

  /// Throws HwFault when the plan injects a fault for this call.
  /// `core` is kInvalidCore for machine-wide ops (CAT, PMU snapshot).
  void maybe_fault(FaultOp op, CoreId core);

  /// Apply the plan's read-path corruption modes to a PMU snapshot.
  void corrupt_snapshot(std::vector<sim::PmuCounters>& snapshot);

  std::uint64_t injected_faults() const noexcept { return injected_; }
  std::uint64_t corrupted_snapshots() const noexcept { return corrupted_; }
  /// Persistent faults healed by the plan's repair window so far.
  std::uint64_t repaired_faults() const noexcept { return repaired_; }

 private:
  double fail_probability(FaultOp op) const noexcept;
  bool offline(CoreId core) const noexcept;
  [[noreturn]] void throw_fault(FaultClass cls, FaultOp op, CoreId core);

  FaultPlan plan_;
  Rng rng_;
  std::uint64_t injected_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t repaired_ = 0;
  std::uint64_t calls_ = 0;  // maybe_fault() invocations (repair clock)
  // Sticky failures -> maybe_fault call index at which each was
  // injected (the repair window anchors here).
  std::map<std::pair<std::uint8_t, CoreId>, std::uint64_t> persistent_;
};

/// MsrDevice decorator: injects faults before delegating.
class FaultInjectingMsrDevice final : public MsrDevice {
 public:
  FaultInjectingMsrDevice(MsrDevice& inner, FaultInjector& faults)
      : inner_(&inner), faults_(&faults) {}

  std::uint64_t read(CoreId core, std::uint32_t msr) const override {
    faults_->maybe_fault(FaultOp::MsrRead, core);
    return inner_->read(core, msr);
  }
  void write(CoreId core, std::uint32_t msr, std::uint64_t value) override {
    faults_->maybe_fault(FaultOp::MsrWrite, core);
    inner_->write(core, msr, value);
  }
  unsigned num_cores() const override { return inner_->num_cores(); }

 private:
  MsrDevice* inner_;
  FaultInjector* faults_;
};

/// PmuReader decorator: throwing read faults plus wrap/garbage
/// snapshot corruption.
class FaultInjectingPmuReader final : public PmuReader {
 public:
  FaultInjectingPmuReader(const PmuReader& inner, FaultInjector& faults)
      : inner_(&inner), faults_(&faults) {}

  std::vector<sim::PmuCounters> read_all() const override {
    faults_->maybe_fault(FaultOp::PmuRead, kInvalidCore);
    auto snapshot = inner_->read_all();
    faults_->corrupt_snapshot(snapshot);
    return snapshot;
  }
  unsigned num_cores() const override { return inner_->num_cores(); }

 private:
  const PmuReader* inner_;
  FaultInjector* faults_;
};

/// MbaController decorator.
class FaultInjectingMbaController final : public MbaController {
 public:
  FaultInjectingMbaController(MbaController& inner, FaultInjector& faults)
      : inner_(&inner), faults_(&faults) {}

  void apply(const std::vector<std::uint8_t>& per_core_levels) override {
    faults_->maybe_fault(FaultOp::MbaApply, kInvalidCore);
    inner_->apply(per_core_levels);
  }
  std::vector<std::uint8_t> current() const override { return inner_->current(); }
  void reset() override {
    faults_->maybe_fault(FaultOp::MbaReset, kInvalidCore);
    inner_->reset();
  }
  unsigned num_levels() const override { return inner_->num_levels(); }
  unsigned num_cores() const override { return inner_->num_cores(); }

 private:
  MbaController* inner_;
  FaultInjector* faults_;
};

/// CatController decorator.
class FaultInjectingCatController final : public CatController {
 public:
  FaultInjectingCatController(CatController& inner, FaultInjector& faults)
      : inner_(&inner), faults_(&faults) {}

  void apply(const std::vector<WayMask>& per_core_masks) override {
    faults_->maybe_fault(FaultOp::CatApply, kInvalidCore);
    inner_->apply(per_core_masks);
  }
  std::vector<WayMask> current() const override { return inner_->current(); }
  void reset() override {
    faults_->maybe_fault(FaultOp::CatReset, kInvalidCore);
    inner_->reset();
  }
  unsigned llc_ways() const override { return inner_->llc_ways(); }
  unsigned num_cores() const override { return inner_->num_cores(); }

 private:
  CatController* inner_;
  FaultInjector* faults_;
};

}  // namespace cmm::hw
