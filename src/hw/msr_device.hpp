// Hardware-abstraction layer: the CMM controller (src/core) is written
// exclusively against these interfaces, mirroring the paper's kernel
// module which touched hardware only through MSR writes, PMU reads, and
// CAT MSRs. Porting to a real Intel machine means implementing:
//
//   MsrDevice     -> pread/pwrite on /dev/cpu/<n>/msr (or wrmsr IPIs in
//                    a kernel module), register 0x1A4
//   PmuReader     -> perf_event_open or raw PMC programming
//   CatController -> libpqos (or IA32_L3_MASK_n + IA32_PQR_ASSOC MSRs)
//
// The simulated implementations below bind the interfaces to
// sim::MulticoreSystem.
#pragma once

#include <cstdint>

#include "common/retry.hpp"
#include "common/types.hpp"
#include "sim/multicore_system.hpp"

namespace cmm::hw {

/// Per-logical-CPU model-specific-register access.
class MsrDevice {
 public:
  virtual ~MsrDevice() = default;
  virtual std::uint64_t read(CoreId core, std::uint32_t msr) const = 0;
  virtual void write(CoreId core, std::uint32_t msr, std::uint64_t value) = 0;
  virtual unsigned num_cores() const = 0;
};

/// MsrDevice bound to the simulator. Only MSR 0x1A4 is modelled; other
/// registers throw, which is also what a real driver does for
/// unimplemented addresses (#GP).
class SimMsrDevice final : public MsrDevice {
 public:
  explicit SimMsrDevice(sim::MulticoreSystem& system) : system_(&system) {}

  std::uint64_t read(CoreId core, std::uint32_t msr) const override;
  void write(CoreId core, std::uint32_t msr, std::uint64_t value) override;
  unsigned num_cores() const override { return system_->num_cores(); }

 private:
  sim::MulticoreSystem* system_;
};

/// Convenience wrapper over the prefetcher-control register: the unit
/// the paper's back-end manipulates ("all four prefetchers per core are
/// either on or off"). Every MSR access goes through the retry policy:
/// transient faults (EBUSY-class, see common/retry.hpp) are re-attempted
/// with deterministic backoff; persistent faults propagate so the
/// caller can degrade (the EpochDriver's CP-only fallback).
class PrefetchControl {
 public:
  explicit PrefetchControl(MsrDevice& msr, RetryPolicy retry = {})
      : msr_(&msr), retry_(std::move(retry)) {}

  void set_core_prefetchers(CoreId core, bool on);
  bool core_prefetchers_on(CoreId core) const;

  void set_prefetcher(CoreId core, sim::PrefetcherKind kind, bool on);
  bool prefetcher_on(CoreId core, sim::PrefetcherKind kind) const;

  /// Re-enable everything (baseline state).
  void enable_all();

  unsigned num_cores() const { return msr_->num_cores(); }

 private:
  std::uint64_t read_msr(CoreId core) const;
  void write_msr(CoreId core, std::uint64_t value);

  MsrDevice* msr_;
  RetryPolicy retry_;
};

}  // namespace cmm::hw
