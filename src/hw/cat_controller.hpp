// CAT programming interface (libpqos equivalent). The controller
// expresses partitions as per-core way masks; the implementation maps
// cores onto classes of service. The simulated implementation drives
// sim::CatModel with a trivial COS assignment (one COS per distinct
// mask), which is exactly how pqos' "OS interface" allocates CLOSes.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "sim/multicore_system.hpp"

namespace cmm::hw {

class CatController {
 public:
  virtual ~CatController() = default;

  /// Apply one way mask per core (size must equal core count). Masks
  /// must satisfy CAT constraints (non-empty, contiguous).
  virtual void apply(const std::vector<WayMask>& per_core_masks) = 0;

  /// Current mask of each core.
  virtual std::vector<WayMask> current() const = 0;

  /// Remove all partitioning (full mask everywhere).
  virtual void reset() = 0;

  virtual unsigned llc_ways() const = 0;
  virtual unsigned num_cores() const = 0;
};

class SimCatController final : public CatController {
 public:
  explicit SimCatController(sim::MulticoreSystem& system) : system_(&system) {}

  void apply(const std::vector<WayMask>& per_core_masks) override;
  std::vector<WayMask> current() const override;
  void reset() override;
  unsigned llc_ways() const override { return system_->cat().llc_ways(); }
  unsigned num_cores() const override { return system_->num_cores(); }

 private:
  sim::MulticoreSystem* system_;
};

}  // namespace cmm::hw
