#include "hw/cat_controller.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/bitmask.hpp"

namespace cmm::hw {

void SimCatController::apply(const std::vector<WayMask>& per_core_masks) {
  sim::CatModel& cat = system_->cat();
  if (per_core_masks.size() != system_->num_cores())
    throw std::invalid_argument("SimCatController: one mask per core required");

  // Deduplicate masks into COS slots, like pqos allocating CLOSes.
  std::vector<WayMask> distinct;
  for (const WayMask m : per_core_masks) {
    if (std::find(distinct.begin(), distinct.end(), m) == distinct.end()) distinct.push_back(m);
  }
  if (distinct.size() > cat.num_cos())
    throw std::invalid_argument("SimCatController: more distinct masks than COS");

  for (unsigned cos = 0; cos < distinct.size(); ++cos) cat.set_cbm(cos, distinct[cos]);
  for (CoreId c = 0; c < per_core_masks.size(); ++c) {
    const auto it = std::find(distinct.begin(), distinct.end(), per_core_masks[c]);
    cat.assign_core(c, static_cast<unsigned>(it - distinct.begin()));
  }
}

std::vector<WayMask> SimCatController::current() const {
  const sim::CatModel& cat = system_->cat();
  std::vector<WayMask> masks(system_->num_cores());
  for (CoreId c = 0; c < masks.size(); ++c) masks[c] = cat.core_mask(c);
  return masks;
}

void SimCatController::reset() { system_->cat().reset(); }

}  // namespace cmm::hw
