#include "hw/cat_controller.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/bitmask.hpp"

namespace cmm::hw {

void SimCatController::apply(const std::vector<WayMask>& per_core_masks) {
  if (per_core_masks.size() != system_->num_cores())
    throw std::invalid_argument("SimCatController: one mask per core required");

  // Each LLC domain has its own CAT instance with its own 16 COS slots;
  // deduplicate per domain, like pqos allocating CLOSes per socket. At
  // one domain this degenerates to exactly the old global behaviour.
  const std::uint32_t cpd = system_->config().cores_per_domain();
  for (unsigned d = 0; d < system_->num_domains(); ++d) {
    sim::CatModel& cat = system_->cat(d);
    const CoreId lo = system_->config().domain_base(d);

    std::vector<WayMask> distinct;
    for (CoreId c = lo; c < lo + cpd; ++c) {
      const WayMask m = per_core_masks[c];
      if (std::find(distinct.begin(), distinct.end(), m) == distinct.end()) distinct.push_back(m);
    }
    if (distinct.size() > cat.num_cos())
      throw std::invalid_argument("SimCatController: more distinct masks than COS");

    for (unsigned cos = 0; cos < distinct.size(); ++cos) cat.set_cbm(cos, distinct[cos]);
    for (CoreId c = lo; c < lo + cpd; ++c) {
      const auto it = std::find(distinct.begin(), distinct.end(), per_core_masks[c]);
      cat.assign_core(c, static_cast<unsigned>(it - distinct.begin()));
    }
  }
}

std::vector<WayMask> SimCatController::current() const {
  std::vector<WayMask> masks(system_->num_cores());
  for (CoreId c = 0; c < masks.size(); ++c) {
    masks[c] = system_->cat(system_->domain_of(c)).core_mask(c);
  }
  return masks;
}

void SimCatController::reset() {
  for (unsigned d = 0; d < system_->num_domains(); ++d) system_->cat(d).reset();
}

}  // namespace cmm::hw
