#include "hw/msr_device.hpp"

#include <stdexcept>

#include "sim/prefetch_msr.hpp"

namespace cmm::hw {

std::uint64_t SimMsrDevice::read(CoreId core, std::uint32_t msr) const {
  if (msr != sim::kMsrMiscFeatureControl)
    throw std::invalid_argument("SimMsrDevice: unmodelled MSR");
  return system_->core(core).prefetch_msr().read();
}

void SimMsrDevice::write(CoreId core, std::uint32_t msr, std::uint64_t value) {
  if (msr != sim::kMsrMiscFeatureControl)
    throw std::invalid_argument("SimMsrDevice: unmodelled MSR");
  system_->core(core).prefetch_msr().write(value);
}

std::uint64_t PrefetchControl::read_msr(CoreId core) const {
  return with_retry(retry_, [&] { return msr_->read(core, sim::kMsrMiscFeatureControl); });
}

void PrefetchControl::write_msr(CoreId core, std::uint64_t value) {
  with_retry(retry_, [&] { msr_->write(core, sim::kMsrMiscFeatureControl, value); });
}

void PrefetchControl::set_core_prefetchers(CoreId core, bool on) {
  write_msr(core, on ? 0x0ULL : sim::kPrefetchDisableAllMask);
}

bool PrefetchControl::core_prefetchers_on(CoreId core) const { return read_msr(core) == 0; }

void PrefetchControl::set_prefetcher(CoreId core, sim::PrefetcherKind kind, bool on) {
  std::uint64_t v = read_msr(core);
  const std::uint64_t bit = 1ULL << static_cast<unsigned>(kind);
  v = on ? (v & ~bit) : (v | bit);
  write_msr(core, v);
}

bool PrefetchControl::prefetcher_on(CoreId core, sim::PrefetcherKind kind) const {
  const std::uint64_t v = read_msr(core);
  return ((v >> static_cast<unsigned>(kind)) & 1ULL) == 0;
}

void PrefetchControl::enable_all() {
  for (CoreId c = 0; c < msr_->num_cores(); ++c) set_core_prefetchers(c, true);
}

}  // namespace cmm::hw
