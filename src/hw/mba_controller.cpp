#include "hw/mba_controller.hpp"

#include <stdexcept>

namespace cmm::hw {

void SimMbaController::apply(const std::vector<std::uint8_t>& per_core_levels) {
  if (per_core_levels.size() != system_->num_cores())
    throw std::invalid_argument("SimMbaController: one level per core required");
  // Each core's delay register lives on its LLC domain's controller;
  // global core ids index any domain's instance directly (controllers
  // are constructed with the global core count, like CAT).
  for (CoreId c = 0; c < per_core_levels.size(); ++c) {
    system_->memory(system_->domain_of(c)).set_throttle_level(c, per_core_levels[c]);
  }
}

std::vector<std::uint8_t> SimMbaController::current() const {
  std::vector<std::uint8_t> levels(system_->num_cores());
  for (CoreId c = 0; c < levels.size(); ++c) {
    levels[c] = system_->memory(system_->domain_of(c)).throttle_level(c);
  }
  return levels;
}

void SimMbaController::reset() {
  const std::vector<std::uint8_t> zeros(system_->num_cores(), 0);
  apply(zeros);
}

}  // namespace cmm::hw
