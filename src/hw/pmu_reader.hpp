// PMU sampling interface. A real port reads the events of Table I via
// perf_event_open (or PMI handlers, as the paper's kernel module does);
// the simulated implementation snapshots sim::Pmu.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "sim/multicore_system.hpp"
#include "sim/pmu.hpp"

namespace cmm::hw {

class PmuReader {
 public:
  virtual ~PmuReader() = default;

  /// Current cumulative counter values for every core.
  virtual std::vector<sim::PmuCounters> read_all() const = 0;

  virtual unsigned num_cores() const = 0;
};

class SimPmuReader final : public PmuReader {
 public:
  explicit SimPmuReader(const sim::MulticoreSystem& system) : system_(&system) {}

  std::vector<sim::PmuCounters> read_all() const override { return system_->pmu().snapshot(); }
  unsigned num_cores() const override { return system_->num_cores(); }

 private:
  const sim::MulticoreSystem* system_;
};

/// Per-core deltas between two PMU snapshots (an epoch or a sampling
/// interval). A counter that reads *lower* than its earlier snapshot —
/// a wrapped, reprogrammed or garbled counter — saturates that field to
/// zero instead of underflowing uint64_t into an absurd delta; when
/// `wrapped` is non-null it receives one flag per core recording which
/// cores had at least one such counter, so callers can quarantine the
/// interval.
std::vector<sim::PmuCounters> pmu_delta(const std::vector<sim::PmuCounters>& now,
                                        const std::vector<sim::PmuCounters>& earlier,
                                        std::vector<bool>* wrapped = nullptr);

}  // namespace cmm::hw
