#include "hw/pmu_reader.hpp"

#include <stdexcept>

namespace cmm::hw {

namespace {

/// a - b, saturating at zero; flags the wrap instead of underflowing.
std::uint64_t sub_detect(std::uint64_t a, std::uint64_t b, bool& wrapped) noexcept {
  if (a < b) {
    wrapped = true;
    return 0;
  }
  return a - b;
}

}  // namespace

std::vector<sim::PmuCounters> pmu_delta(const std::vector<sim::PmuCounters>& now,
                                        const std::vector<sim::PmuCounters>& earlier,
                                        std::vector<bool>* wrapped) {
  if (now.size() != earlier.size()) throw std::invalid_argument("pmu_delta: size mismatch");
  if (wrapped != nullptr) wrapped->assign(now.size(), false);
  std::vector<sim::PmuCounters> d(now.size());
  for (std::size_t i = 0; i < now.size(); ++i) {
    const auto& n = now[i];
    const auto& e = earlier[i];
    auto& out = d[i];
    bool w = false;
    out.cycles = sub_detect(n.cycles, e.cycles, w);
    out.instructions = sub_detect(n.instructions, e.instructions, w);
    out.l2_pref_req = sub_detect(n.l2_pref_req, e.l2_pref_req, w);
    out.l2_pref_miss = sub_detect(n.l2_pref_miss, e.l2_pref_miss, w);
    out.l2_dm_req = sub_detect(n.l2_dm_req, e.l2_dm_req, w);
    out.l2_dm_miss = sub_detect(n.l2_dm_miss, e.l2_dm_miss, w);
    out.l3_load_miss = sub_detect(n.l3_load_miss, e.l3_load_miss, w);
    out.stalls_l2_pending = sub_detect(n.stalls_l2_pending, e.stalls_l2_pending, w);
    out.dram_demand_bytes = sub_detect(n.dram_demand_bytes, e.dram_demand_bytes, w);
    out.dram_prefetch_bytes = sub_detect(n.dram_prefetch_bytes, e.dram_prefetch_bytes, w);
    out.dram_writeback_bytes = sub_detect(n.dram_writeback_bytes, e.dram_writeback_bytes, w);
    if (w && wrapped != nullptr) (*wrapped)[i] = true;
  }
  return d;
}

}  // namespace cmm::hw
