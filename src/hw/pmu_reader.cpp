#include "hw/pmu_reader.hpp"

#include <stdexcept>

namespace cmm::hw {

std::vector<sim::PmuCounters> pmu_delta(const std::vector<sim::PmuCounters>& now,
                                        const std::vector<sim::PmuCounters>& earlier) {
  if (now.size() != earlier.size()) throw std::invalid_argument("pmu_delta: size mismatch");
  std::vector<sim::PmuCounters> d(now.size());
  for (std::size_t i = 0; i < now.size(); ++i) d[i] = now[i].delta_since(earlier[i]);
  return d;
}

}  // namespace cmm::hw
