#include "hw/fault_injection.hpp"

#include <algorithm>
#include <string>

namespace cmm::hw {

std::string_view to_string(FaultOp op) noexcept {
  switch (op) {
    case FaultOp::MsrRead: return "msr_read";
    case FaultOp::MsrWrite: return "msr_write";
    case FaultOp::PmuRead: return "pmu_read";
    case FaultOp::CatApply: return "cat_apply";
    case FaultOp::CatReset: return "cat_reset";
    case FaultOp::MbaApply: return "mba_apply";
    case FaultOp::MbaReset: return "mba_reset";
  }
  return "unknown";
}

FaultPlan FaultPlan::transient_everywhere(double rate, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.msr_read_fail_p = rate;
  plan.msr_write_fail_p = rate;
  plan.pmu_read_fail_p = rate;
  plan.cat_apply_fail_p = rate;
  plan.cat_reset_fail_p = rate;
  plan.mba_apply_fail_p = rate;
  plan.mba_reset_fail_p = rate;
  plan.transient_fraction = 1.0;
  return plan;
}

bool FaultPlan::enabled() const noexcept {
  return msr_read_fail_p > 0.0 || msr_write_fail_p > 0.0 || pmu_read_fail_p > 0.0 ||
         cat_apply_fail_p > 0.0 || cat_reset_fail_p > 0.0 || mba_apply_fail_p > 0.0 ||
         mba_reset_fail_p > 0.0 || pmu_wrap_p > 0.0 || pmu_garbage_p > 0.0 ||
         !offline_cores.empty();
}

double FaultInjector::fail_probability(FaultOp op) const noexcept {
  switch (op) {
    case FaultOp::MsrRead: return plan_.msr_read_fail_p;
    case FaultOp::MsrWrite: return plan_.msr_write_fail_p;
    case FaultOp::PmuRead: return plan_.pmu_read_fail_p;
    case FaultOp::CatApply: return plan_.cat_apply_fail_p;
    case FaultOp::CatReset: return plan_.cat_reset_fail_p;
    case FaultOp::MbaApply: return plan_.mba_apply_fail_p;
    case FaultOp::MbaReset: return plan_.mba_reset_fail_p;
  }
  return 0.0;
}

bool FaultInjector::offline(CoreId core) const noexcept {
  return core != kInvalidCore &&
         std::find(plan_.offline_cores.begin(), plan_.offline_cores.end(), core) !=
             plan_.offline_cores.end();
}

void FaultInjector::throw_fault(FaultClass cls, FaultOp op, CoreId core) {
  ++injected_;
  std::string what = "injected ";
  what += to_string(cls);
  what += " fault: ";
  what += to_string(op);
  if (core != kInvalidCore) what += " core " + std::to_string(core);
  throw HwFault(cls, what);
}

void FaultInjector::maybe_fault(FaultOp op, CoreId core) {
  ++calls_;
  const auto key = std::make_pair(static_cast<std::uint8_t>(op), core);
  if (offline(core)) throw_fault(FaultClass::Persistent, op, core);
  if (const auto it = persistent_.find(key); it != persistent_.end()) {
    if (plan_.repair_after_calls > 0 && calls_ - it->second >= plan_.repair_after_calls) {
      // The repair window elapsed: the knob works again. Fall through
      // to the probabilistic path so a healed op can fault anew.
      persistent_.erase(it);
      ++repaired_;
    } else {
      throw_fault(FaultClass::Persistent, op, core);
    }
  }
  const double p = fail_probability(op);
  if (p <= 0.0) return;
  if (!rng_.next_bool(p)) return;
  const bool transient =
      plan_.transient_fraction >= 1.0 ||
      (plan_.transient_fraction > 0.0 && rng_.next_bool(plan_.transient_fraction));
  if (!transient) persistent_.emplace(key, calls_);
  throw_fault(transient ? FaultClass::Transient : FaultClass::Persistent, op, core);
}

void FaultInjector::corrupt_snapshot(std::vector<sim::PmuCounters>& snapshot) {
  if (snapshot.empty()) return;
  const auto corrupt_core = [&](auto&& mutate) {
    const auto core = static_cast<std::size_t>(rng_.next_below(snapshot.size()));
    auto& c = snapshot[core];
    for (std::uint64_t* field :
         {&c.cycles, &c.instructions, &c.l2_pref_req, &c.l2_pref_miss, &c.l2_dm_req,
          &c.l2_dm_miss, &c.l3_load_miss, &c.stalls_l2_pending, &c.dram_demand_bytes,
          &c.dram_prefetch_bytes, &c.dram_writeback_bytes}) {
      *field = mutate(*field);
    }
    ++corrupted_;
  };

  if (plan_.pmu_wrap_p > 0.0 && rng_.next_bool(plan_.pmu_wrap_p)) {
    const std::uint64_t modulus = 1ULL << std::min(plan_.pmu_wrap_bits, 63U);
    corrupt_core([&](std::uint64_t v) { return v % modulus; });
  }
  if (plan_.pmu_garbage_p > 0.0 && rng_.next_bool(plan_.pmu_garbage_p)) {
    corrupt_core([&](std::uint64_t) { return rng_.next(); });
  }
}

}  // namespace cmm::hw
