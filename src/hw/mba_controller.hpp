// MBA programming interface (Intel Memory Bandwidth Allocation
// equivalent, the BP axis of the {PT x CP x BP} space). The controller
// expresses regulation as one delay-injection level per core, mirroring
// the per-core MBA delay MSRs resctrl programs; the simulated
// implementation routes each core's level to its LLC domain's
// MemoryController. Level 0 everywhere is the hardware reset state and
// leaves the memory model bit-identical to an unregulated machine.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "sim/multicore_system.hpp"

namespace cmm::hw {

class MbaController {
 public:
  virtual ~MbaController() = default;

  /// Apply one throttle level per core (size must equal core count).
  /// Levels beyond the ladder are clamped by the implementation.
  virtual void apply(const std::vector<std::uint8_t>& per_core_levels) = 0;

  /// Current level of each core.
  virtual std::vector<std::uint8_t> current() const = 0;

  /// Remove all regulation (level 0 everywhere).
  virtual void reset() = 0;

  virtual unsigned num_levels() const = 0;
  virtual unsigned num_cores() const = 0;
};

class SimMbaController final : public MbaController {
 public:
  explicit SimMbaController(sim::MulticoreSystem& system) : system_(&system) {}

  void apply(const std::vector<std::uint8_t>& per_core_levels) override;
  std::vector<std::uint8_t> current() const override;
  void reset() override;
  unsigned num_levels() const override { return sim::MemoryController::kNumThrottleLevels; }
  unsigned num_cores() const override { return system_->num_cores(); }

 private:
  sim::MulticoreSystem* system_;
};

}  // namespace cmm::hw
