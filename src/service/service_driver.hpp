// Resilient service mode: the batch EpochDriver wrapped into a
// long-running multi-tenant controller. Tenants (benchmark workloads)
// arrive and depart at runtime; each attach hotplugs a core in (cold
// microarchitectural state, solo-IPC re-warm through the memo cache,
// partition re-seed so the policy re-converges for the new occupancy),
// each detach hotplugs it out onto the configuration-independent idle
// loop.
//
// Admission control guards existing tenants' SLOs: a tenant is admitted
// only onto a free core *and* while the projected DRAM pressure — the
// sum of all resident tenants' solo bandwidth demand plus the
// candidate's — stays under `admission_headroom` of the machine's peak.
// Requests that do not fit are queued FIFO (drained head-first as
// departures free capacity) or rejected when the queue is full.
//
// Per-tenant SLO targets are min-IPC-vs-solo floors: after every
// service tick each tenant's execution-epoch IPC is compared against
// slo * solo_ipc; shortfalls are recorded as SloBreach health + trace
// events. Everything is deterministic: same seeds, same churn, same
// fault plan -> bit-identical HealthLog, trace bytes, and counters at
// any harness thread count.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/bandwidth_ledger.hpp"
#include "analysis/run_harness.hpp"
#include "core/epoch_driver.hpp"
#include "hw/fault_injection.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "sim/multicore_system.hpp"

namespace cmm::service {

/// One workload requesting service.
struct TenantSpec {
  std::string benchmark;   // name from workloads::benchmark_suite()
  double slo = 0.0;        // min-IPC floor as a fraction of solo IPC (0 = none)
  std::uint64_t seed = 42; // op-source seed (stream identity)
};

enum class AdmissionDecision : std::uint8_t { Admitted, Queued, Rejected };

struct AdmissionResult {
  AdmissionDecision decision = AdmissionDecision::Rejected;
  CoreId core = kInvalidCore;  // valid when Admitted
};

struct ServiceConfig {
  /// Machine + epoch schedule + solo-run parameters. The solo re-warm
  /// runs use these params verbatim (so memoized results are shared
  /// with the figure benches at equal configs).
  analysis::RunParams params{};

  /// Simulated cycles per tick() call. 0 = one execution epoch plus a
  /// profiling budget of 8 sampling intervals.
  Cycle tick_cycles = 0;

  /// Admission: projected solo-demand sum must stay under this fraction
  /// of peak DRAM bandwidth.
  double admission_headroom = 0.85;

  /// Pending attach requests kept FIFO; beyond this they are rejected.
  std::size_t max_queue = 8;

  /// HealthLog ring bound (0 = unbounded).
  std::size_t health_capacity = 0;

  /// Re-seed the partition/prefetch state to baseline on every attach
  /// and detach, forcing the policy to re-converge for the new tenant
  /// set instead of serving a stale partition.
  bool reseed_on_churn = true;

  /// Wrap the HAL in fault-injecting decorators even for a plan that
  /// can never fire (used by tests to pin rate-0 transparency).
  bool force_fault_decorators = false;

  /// Draw admission against this externally owned bandwidth ledger
  /// instead of a private one (e.g. FleetCoordinator::ledger(), so
  /// multi-domain admission and migration share one budget: demand the
  /// coordinator has already routed counts against new admissions).
  /// Must outlive the driver and have at least num_cores slots. Null —
  /// the default — keeps a private ledger, and every admission
  /// decision is bit-identical to the pre-ledger driver.
  analysis::BandwidthLedger* shared_ledger = nullptr;
};

/// Resident-tenant bookkeeping, exposed read-only for tests/reports.
struct TenantState {
  TenantSpec spec;
  CoreId core = kInvalidCore;
  double solo_ipc = 0.0;        // memoized solo re-warm result
  double solo_gbs = 0.0;        // solo DRAM pressure (admission currency)
  std::uint64_t attach_tick = 0;
  std::uint64_t ticks_served = 0;
  std::uint64_t breaches = 0;   // SLO shortfall ticks
  double last_ipc = 0.0;        // most recent service-tick IPC
  double ipc_sum = 0.0;         // over served ticks (mean on detach)
  sim::PmuCounters last_counters;  // exec-counter snapshot at last tick
};

class ServiceDriver {
 public:
  ServiceDriver(const ServiceConfig& cfg, std::unique_ptr<core::Policy> policy,
                const hw::FaultPlan& faults = {}, obs::TraceSink* sink = nullptr,
                obs::MetricsRegistry* metrics = nullptr);

  ServiceDriver(const ServiceDriver&) = delete;
  ServiceDriver& operator=(const ServiceDriver&) = delete;

  /// Request admission. Admitted tenants start executing at the next
  /// tick(); queued ones wait for capacity in FIFO order.
  AdmissionResult attach(const TenantSpec& spec);

  /// Remove the tenant on `core` (hotplug out). False when idle.
  bool detach(CoreId core);

  /// Advance the service by one tick: run the epoch schedule for
  /// tick_cycles, account per-tenant IPC against SLO floors, then
  /// drain the admission queue into any freed capacity.
  void tick();

  std::uint64_t ticks() const noexcept { return ticks_; }

  // ---- introspection ----
  const std::vector<std::optional<TenantState>>& tenants() const noexcept { return tenants_; }
  std::size_t active_tenants() const noexcept;
  std::size_t queue_depth() const noexcept { return queue_.size(); }
  unsigned num_cores() const noexcept { return system_.num_cores(); }

  std::uint64_t attaches() const noexcept { return attaches_; }
  std::uint64_t detaches() const noexcept { return detaches_; }
  std::uint64_t rejections() const noexcept { return rejections_; }
  std::uint64_t queued_total() const noexcept { return queued_total_; }
  std::uint64_t slo_breaches() const noexcept { return slo_breaches_; }

  /// All surviving tenants at or above their SLO floor as of the most
  /// recent tick (vacuously true for tenants without a floor or that
  /// have not completed a tick yet).
  bool all_tenants_within_slo() const noexcept;

  const core::EpochDriver& driver() const noexcept { return *driver_; }
  const core::HealthLog& health() const noexcept { return driver_->health(); }
  sim::MulticoreSystem& system() noexcept { return system_; }
  const hw::FaultInjector* injector() const noexcept { return injector_.get(); }

  /// Aggregate DRAM peak (GB/s) the admission budget is drawn against:
  /// per-domain peak x domain count (ledger total).
  double peak_gbs() const noexcept;

  /// The bandwidth ledger admission draws on (shared or private).
  const analysis::BandwidthLedger& ledger() const noexcept { return *ledger_; }

 private:
  /// Projected DRAM pressure (GB/s) with `extra_gbs` added.
  double projected_pressure(double extra_gbs) const noexcept;

  /// Lowest-index idle core, or kInvalidCore.
  CoreId free_core() const noexcept;

  /// Solo re-warm through the global memo cache.
  void warm_solo(TenantSpec spec, double& solo_ipc, double& solo_gbs) const;

  bool admissible(double solo_gbs) const noexcept;
  CoreId install(const TenantSpec& spec, double solo_ipc, double solo_gbs);
  void drain_queue();
  void reseed_baseline();
  void account_tick();

  ServiceConfig cfg_;
  Cycle tick_cycles_ = 0;
  std::unique_ptr<core::Policy> policy_;
  sim::MulticoreSystem system_;

  // HAL stack: sim devices at the bottom; fault decorators on top only
  // when the plan can fire (or tests force them).
  hw::SimMsrDevice sim_msr_;
  hw::SimPmuReader sim_pmu_;
  hw::SimCatController sim_cat_;
  hw::SimMbaController sim_mba_;
  std::unique_ptr<hw::FaultInjector> injector_;
  std::unique_ptr<hw::FaultInjectingMsrDevice> f_msr_;
  std::unique_ptr<hw::FaultInjectingPmuReader> f_pmu_;
  std::unique_ptr<hw::FaultInjectingCatController> f_cat_;
  std::unique_ptr<hw::FaultInjectingMbaController> f_mba_;
  std::unique_ptr<core::EpochDriver> driver_;

  obs::MetricsRegistry* metrics_ = nullptr;

  // Admission currency: solo-GB/s commitments, one slot per core,
  // homed on the core's LLC domain. Private unless cfg.shared_ledger
  // points at a coordinator-owned instance.
  analysis::BandwidthLedger own_ledger_;
  analysis::BandwidthLedger* ledger_ = nullptr;

  std::vector<std::optional<TenantState>> tenants_;  // indexed by core
  std::deque<TenantSpec> queue_;
  std::uint64_t ticks_ = 0;
  std::uint64_t attaches_ = 0;
  std::uint64_t detaches_ = 0;
  std::uint64_t rejections_ = 0;
  std::uint64_t queued_total_ = 0;
  std::uint64_t slo_breaches_ = 0;
};

}  // namespace cmm::service
