#include "service/soak.hpp"

#include <iomanip>
#include <sstream>
#include <vector>

#include "common/rng.hpp"
#include "workloads/benchmark_specs.hpp"

namespace cmm::service {

namespace {

/// Pair each degrade rung with its matching recovery, accumulating the
/// simulated-cycle latency. The ladder records at most one outstanding
/// fallback per axis, so a single pending slot per kind suffices.
struct LadderPairing {
  std::uint64_t pairs = 0;
  double total_cycles = 0.0;

  void scan(const core::HealthLog& log, core::HealthEventKind down,
            core::HealthEventKind up) {
    bool pending = false;
    Cycle down_time = 0;
    for (const auto& e : log.events()) {
      if (e.kind == down) {
        pending = true;
        down_time = e.time;
      } else if (e.kind == up && pending) {
        ++pairs;
        total_cycles += static_cast<double>(e.time - down_time);
        pending = false;
      }
    }
  }
};

}  // namespace

std::string SoakSummary::json() const {
  std::ostringstream out;
  out << std::setprecision(17);
  out << '{' << "\"ticks\":" << ticks << ",\"epochs\":" << epochs
      << ",\"attaches\":" << attaches << ",\"detaches\":" << detaches
      << ",\"rejections\":" << rejections << ",\"queued_total\":" << queued_total
      << ",\"slo_breaches\":" << slo_breaches << ",\"survivors\":" << survivors
      << ",\"queue_depth\":" << queue_depth
      << ",\"all_within_slo\":" << (all_within_slo ? "true" : "false")
      << ",\"cp_degrades\":" << cp_degrades << ",\"cp_recoveries\":" << cp_recoveries
      << ",\"pt_degrades\":" << pt_degrades << ",\"pt_recoveries\":" << pt_recoveries
      << ",\"recovery_probes\":" << recovery_probes << ",\"full_cycles\":" << full_cycles
      << ",\"mean_recovery_cycles\":" << mean_recovery_cycles
      << ",\"injected_faults\":" << injected_faults
      << ",\"repaired_faults\":" << repaired_faults
      << ",\"health_retained\":" << health_retained
      << ",\"health_dropped\":" << health_dropped << ",\"health\":" << health_json << '}';
  return out.str();
}

SoakSummary run_service(const SoakConfig& cfg, obs::TraceSink* sink,
                        obs::MetricsRegistry* metrics) {
  ServiceConfig sc;
  sc.params = cfg.params;
  if (sc.params.epochs.probe_period_epochs == 0) sc.params.epochs.probe_period_epochs = 3;
  sc.tick_cycles = cfg.tick_cycles;
  sc.admission_headroom = cfg.admission_headroom;
  sc.max_queue = cfg.max_queue;
  sc.health_capacity = cfg.health_capacity;

  auto policy = analysis::make_policy(cfg.policy, cfg.params.detector());
  ServiceDriver svc(sc, std::move(policy), cfg.faults, sink, metrics);

  std::vector<std::string> names;
  for (const auto& spec : workloads::benchmark_suite()) names.push_back(spec.name);

  Rng churn(cfg.churn_seed);
  std::size_t next_name = 0;
  std::uint64_t arrival_no = 0;
  for (std::uint64_t t = 0; t < cfg.ticks; ++t) {
    // Draw both Bernoullis every tick so the churn stream is a fixed
    // function of the seed, independent of admission outcomes.
    const bool arrive = churn.next_bool(cfg.arrival_p);
    const bool depart = churn.next_bool(cfg.departure_p);

    if (arrive) {
      TenantSpec spec;
      spec.benchmark = names[next_name++ % names.size()];
      spec.slo = cfg.slo;
      spec.seed = cfg.churn_seed + 100 + arrival_no++;
      svc.attach(spec);
    }
    if (depart && svc.active_tenants() > 0) {
      // Victim pick over the core-ordered resident list (deterministic).
      std::vector<CoreId> occupied;
      for (CoreId c = 0; c < svc.tenants().size(); ++c) {
        if (svc.tenants()[c].has_value()) occupied.push_back(c);
      }
      svc.detach(occupied[churn.next_below(occupied.size())]);
    }
    svc.tick();
  }

  const auto& health = svc.health();
  SoakSummary s;
  s.ticks = svc.ticks();
  s.epochs = svc.driver().epoch_index();
  s.attaches = svc.attaches();
  s.detaches = svc.detaches();
  s.rejections = svc.rejections();
  s.queued_total = svc.queued_total();
  s.slo_breaches = svc.slo_breaches();
  s.survivors = svc.active_tenants();
  s.queue_depth = svc.queue_depth();
  s.all_within_slo = svc.all_tenants_within_slo();

  using K = core::HealthEventKind;
  s.cp_degrades = health.count(K::CpOnlyFallback);
  s.cp_recoveries = health.count(K::CpOnlyRecovered);
  s.pt_degrades = health.count(K::PtOnlyFallback);
  s.pt_recoveries = health.count(K::PtOnlyRecovered);
  s.recovery_probes = health.count(K::RecoveryProbe);

  LadderPairing pairing;
  pairing.scan(health, K::CpOnlyFallback, K::CpOnlyRecovered);
  pairing.scan(health, K::PtOnlyFallback, K::PtOnlyRecovered);
  s.full_cycles = pairing.pairs;
  s.mean_recovery_cycles =
      pairing.pairs > 0 ? pairing.total_cycles / static_cast<double>(pairing.pairs) : 0.0;

  if (svc.injector() != nullptr) {
    s.injected_faults = svc.injector()->injected_faults();
    s.repaired_faults = svc.injector()->repaired_faults();
  }
  s.health_retained = health.events().size();
  s.health_dropped = health.dropped();
  s.health_json = health.summary_json();
  return s;
}

}  // namespace cmm::service
