// Deterministic service-mode soak: seeded tenant arrival/departure over
// the workload catalog, composed with a FaultPlan chaos schedule, run
// through the ServiceDriver for a fixed number of ticks. The summary is
// a pure function of (SoakConfig) — same config, same bytes, at any
// harness thread count — which is what the soak bench and CI gate on.
#pragma once

#include <cstdint>
#include <string>

#include "analysis/run_harness.hpp"
#include "hw/fault_injection.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "service/service_driver.hpp"

namespace cmm::service {

struct SoakConfig {
  /// Machine + epoch schedule; also the solo re-warm parameters.
  analysis::RunParams params{};

  /// Policy under soak (analysis::make_policy name).
  std::string policy = "cmm_c";

  /// Service ticks to run.
  std::uint64_t ticks = 200;

  /// Seed for the churn process (arrivals, departures, victim picks).
  /// Independent of params.seed so workload streams do not shift when
  /// the churn schedule changes.
  std::uint64_t churn_seed = 7;

  /// Per-tick Bernoulli rates for tenant arrival and departure.
  double arrival_p = 0.45;
  double departure_p = 0.20;

  /// SLO floor assigned to every arriving tenant (fraction of solo IPC;
  /// 0 disables SLO tracking).
  double slo = 0.20;

  /// Chaos schedule (rate 0 = fault-free soak).
  hw::FaultPlan faults{};

  // Pass-through ServiceConfig knobs.
  double admission_headroom = 0.85;
  std::size_t max_queue = 8;
  std::size_t health_capacity = 0;
  Cycle tick_cycles = 0;
};

/// Everything the soak gates on. Deterministic: operator== and json()
/// are bit-stable across repeats of the same config.
struct SoakSummary {
  std::uint64_t ticks = 0;
  std::uint64_t epochs = 0;  // execution epochs completed
  std::uint64_t attaches = 0;
  std::uint64_t detaches = 0;
  std::uint64_t rejections = 0;
  std::uint64_t queued_total = 0;
  std::uint64_t slo_breaches = 0;
  std::size_t survivors = 0;    // tenants resident at end
  std::size_t queue_depth = 0;  // still waiting at end
  bool all_within_slo = false;  // survivors at/above floor on last tick

  // Degradation/recovery ladder traffic (from HealthLog totals).
  std::uint64_t cp_degrades = 0;
  std::uint64_t cp_recoveries = 0;
  std::uint64_t pt_degrades = 0;
  std::uint64_t pt_recoveries = 0;
  std::uint64_t recovery_probes = 0;
  /// Paired degrade->recover transitions observed (both axes).
  std::uint64_t full_cycles = 0;
  /// Mean simulated cycles from a degrade rung to its matching
  /// recovery (0 when no pair completed).
  double mean_recovery_cycles = 0.0;

  std::uint64_t injected_faults = 0;
  std::uint64_t repaired_faults = 0;
  std::uint64_t health_retained = 0;  // events still in the ring
  std::uint64_t health_dropped = 0;   // trimmed by the ring bound
  std::string health_json;            // HealthLog::summary_json()

  std::string json() const;
  bool operator==(const SoakSummary&) const = default;
};

/// Run the soak. When the epoch schedule leaves the recovery ladder
/// disabled (probe_period_epochs == 0), service mode defaults it on
/// with a 3-epoch probation period — a soak without re-probes cannot
/// demonstrate a degrade->recover cycle.
SoakSummary run_service(const SoakConfig& cfg, obs::TraceSink* sink = nullptr,
                        obs::MetricsRegistry* metrics = nullptr);

}  // namespace cmm::service
