#include "service/service_driver.hpp"

#include <utility>

#include "analysis/solo_cache.hpp"
#include "common/bitmask.hpp"
#include "workloads/benchmark_specs.hpp"

namespace cmm::service {

namespace {

core::EpochConfig with_obs(core::EpochConfig epochs, obs::TraceSink* sink,
                           obs::MetricsRegistry* metrics) {
  epochs.sink = sink;
  epochs.metrics = metrics;
  return epochs;
}

}  // namespace

ServiceDriver::ServiceDriver(const ServiceConfig& cfg, std::unique_ptr<core::Policy> policy,
                             const hw::FaultPlan& faults, obs::TraceSink* sink,
                             obs::MetricsRegistry* metrics)
    : cfg_(cfg),
      policy_(std::move(policy)),
      system_(cfg.params.machine),
      sim_msr_(system_),
      sim_pmu_(system_),
      sim_cat_(system_),
      sim_mba_(system_),
      metrics_(metrics),
      own_ledger_(cfg.params.machine.dram_peak_bytes_per_cycle * cfg.params.machine.freq_ghz,
                  cfg.params.machine.num_llc_domains, cfg.params.machine.num_cores),
      ledger_(cfg.shared_ledger != nullptr ? cfg.shared_ledger : &own_ledger_),
      tenants_(cfg.params.machine.num_cores) {
  tick_cycles_ = cfg_.tick_cycles != 0
                     ? cfg_.tick_cycles
                     : cfg_.params.epochs.execution_epoch + 8 * cfg_.params.epochs.sampling_interval;

  // The service starts empty: every core runs the idle loop until a
  // tenant is admitted.
  for (CoreId c = 0; c < system_.num_cores(); ++c) system_.detach_core(c);

  const core::EpochConfig epochs = with_obs(cfg_.params.epochs, sink, metrics);
  if (faults.enabled() || cfg_.force_fault_decorators) {
    injector_ = std::make_unique<hw::FaultInjector>(faults);
    f_msr_ = std::make_unique<hw::FaultInjectingMsrDevice>(sim_msr_, *injector_);
    f_pmu_ = std::make_unique<hw::FaultInjectingPmuReader>(sim_pmu_, *injector_);
    f_cat_ = std::make_unique<hw::FaultInjectingCatController>(sim_cat_, *injector_);
    f_mba_ = std::make_unique<hw::FaultInjectingMbaController>(sim_mba_, *injector_);
    driver_ = std::make_unique<core::EpochDriver>(system_, *policy_, *f_msr_, *f_pmu_, *f_cat_,
                                                  *f_mba_, epochs);
  } else {
    driver_ = std::make_unique<core::EpochDriver>(system_, *policy_, sim_msr_, sim_pmu_,
                                                  sim_cat_, sim_mba_, epochs);
  }
  if (cfg_.health_capacity > 0) driver_->set_health_capacity(cfg_.health_capacity);
}

double ServiceDriver::peak_gbs() const noexcept {
  // dram_peak_bytes_per_cycle is *per LLC domain* (each domain owns its
  // own MemoryController); the machine's aggregate peak scales with the
  // domain count. Ignoring the factor under-admitted multi-domain
  // fleets: tenants were queued against a single domain's bandwidth.
  return ledger_->total_peak_gbs();
}

double ServiceDriver::projected_pressure(double extra_gbs) const noexcept {
  return ledger_->projected(extra_gbs);
}

bool ServiceDriver::admissible(double solo_gbs) const noexcept {
  return ledger_->admissible(solo_gbs, cfg_.admission_headroom);
}

CoreId ServiceDriver::free_core() const noexcept {
  for (CoreId c = 0; c < tenants_.size(); ++c) {
    if (!tenants_[c].has_value()) return c;
  }
  return kInvalidCore;
}

std::size_t ServiceDriver::active_tenants() const noexcept {
  std::size_t n = 0;
  for (const auto& t : tenants_) n += t.has_value() ? 1 : 0;
  return n;
}

void ServiceDriver::warm_solo(TenantSpec spec, double& solo_ipc, double& solo_gbs) const {
  // Solo-IPC re-warm: the characterisation run is a pure function of
  // (benchmark, machine config), so churned tenants hit the process-
  // wide memo cache after their first admission.
  const auto solo = analysis::run_solo_cached(spec.benchmark, cfg_.params,
                                              /*prefetch_on=*/true);
  solo_ipc = solo->cores.front().ipc;
  solo_gbs = solo->cores.front().total_gbs();
}

CoreId ServiceDriver::install(const TenantSpec& spec, double solo_ipc, double solo_gbs) {
  const CoreId core = free_core();
  system_.attach_core(
      core, workloads::make_op_source(spec.benchmark, cfg_.params.machine, core,
                                      spec.seed + 0x1000ULL * core));

  TenantState st;
  st.spec = spec;
  st.core = core;
  st.solo_ipc = solo_ipc;
  st.solo_gbs = solo_gbs;
  st.attach_tick = ticks_;
  st.last_counters = driver_->execution_counters()[core];
  tenants_[core] = std::move(st);
  ledger_->commit(core, cfg_.params.machine.domain_of(core), solo_gbs);
  ++attaches_;

  driver_->record_service_event(core::HealthEventKind::TenantAttach, core, 0, spec.benchmark);
  if (const auto& tr = driver_->trace(); tr.on()) {
    tr.emit(obs::TenantAttach{system_.now(), driver_->epoch_index(), core, spec.benchmark,
                              spec.slo, solo_ipc});
  }
  if (cfg_.reseed_on_churn) reseed_baseline();
  return core;
}

AdmissionResult ServiceDriver::attach(const TenantSpec& spec) {
  double solo_ipc = 0.0;
  double solo_gbs = 0.0;
  warm_solo(spec, solo_ipc, solo_gbs);

  // FIFO fairness: while earlier requests wait, new arrivals go behind
  // them even if they would fit right now.
  if (queue_.empty() && free_core() != kInvalidCore && admissible(solo_gbs)) {
    return {AdmissionDecision::Admitted, install(spec, solo_ipc, solo_gbs)};
  }
  if (queue_.size() < cfg_.max_queue) {
    queue_.push_back(spec);
    ++queued_total_;
    driver_->record_service_event(core::HealthEventKind::TenantQueued, kInvalidCore,
                                  queue_.size(), spec.benchmark);
    return {AdmissionDecision::Queued, kInvalidCore};
  }
  ++rejections_;
  driver_->record_service_event(core::HealthEventKind::TenantRejected, kInvalidCore,
                                queue_.size(), spec.benchmark);
  return {AdmissionDecision::Rejected, kInvalidCore};
}

bool ServiceDriver::detach(CoreId core) {
  if (core >= tenants_.size() || !tenants_[core].has_value()) return false;
  const TenantState st = *tenants_[core];
  const double mean_ipc = st.ticks_served > 0
                              ? st.ipc_sum / static_cast<double>(st.ticks_served)
                              : 0.0;

  driver_->record_service_event(core::HealthEventKind::TenantDetach, core, st.ticks_served,
                                st.spec.benchmark);
  if (const auto& tr = driver_->trace(); tr.on()) {
    tr.emit(obs::TenantDetach{system_.now(), driver_->epoch_index(), core, st.spec.benchmark,
                              st.ticks_served, mean_ipc});
  }

  system_.detach_core(core);
  tenants_[core].reset();
  ledger_->release(core);
  ++detaches_;
  if (cfg_.reseed_on_churn) reseed_baseline();
  drain_queue();
  return true;
}

void ServiceDriver::reseed_baseline() {
  driver_->reseed(
      core::ResourceConfig::baseline(system_.num_cores(), system_.cat().llc_ways()));
}

void ServiceDriver::account_tick() {
  const auto& exec = driver_->execution_counters();
  for (CoreId c = 0; c < tenants_.size(); ++c) {
    if (!tenants_[c].has_value()) continue;
    auto& st = *tenants_[c];
    const sim::PmuCounters delta = exec[c].delta_since(st.last_counters);
    st.last_counters = exec[c];
    st.last_ipc = delta.ipc();
    ++st.ticks_served;
    st.ipc_sum += st.last_ipc;
    if (st.spec.slo <= 0.0) continue;
    const double floor = st.spec.slo * st.solo_ipc;
    if (st.last_ipc >= floor) continue;
    ++st.breaches;
    ++slo_breaches_;
    driver_->record_service_event(core::HealthEventKind::SloBreach, c, st.breaches,
                                  st.spec.benchmark);
    if (const auto& tr = driver_->trace(); tr.on()) {
      tr.emit(obs::SloBreach{system_.now(), driver_->epoch_index(), c, st.spec.benchmark,
                             st.last_ipc, floor});
    }
  }
}

void ServiceDriver::drain_queue() {
  while (!queue_.empty()) {
    if (free_core() == kInvalidCore) break;
    double solo_ipc = 0.0;
    double solo_gbs = 0.0;
    warm_solo(queue_.front(), solo_ipc, solo_gbs);  // memo-cache hit
    if (!admissible(solo_gbs)) break;  // head-of-line: FIFO order is the contract
    const TenantSpec spec = queue_.front();
    queue_.pop_front();
    install(spec, solo_ipc, solo_gbs);
  }
}

void ServiceDriver::tick() {
  driver_->run(tick_cycles_);
  ++ticks_;
  account_tick();
  drain_queue();
  if (metrics_ != nullptr) {
    metrics_->count("service.ticks");
    metrics_->gauge("service.active_tenants", static_cast<double>(active_tenants()));
    metrics_->gauge("service.queue_depth", static_cast<double>(queue_.size()));
  }
}

bool ServiceDriver::all_tenants_within_slo() const noexcept {
  for (const auto& t : tenants_) {
    if (!t.has_value() || t->spec.slo <= 0.0 || t->ticks_served == 0) continue;
    if (t->last_ipc < t->spec.slo * t->solo_ipc) return false;
  }
  return true;
}

}  // namespace cmm::service
